#include "sim/system.hh"

#include "common/logging.hh"
#include "workload/registry.hh"

namespace hira {

std::unique_ptr<RefreshScheme>
System::makeScheme() const
{
    switch (cfg.scheme) {
      case SchemeKind::NoRefresh:
        return std::make_unique<NoRefresh>();
      case SchemeKind::Baseline:
        return std::make_unique<BaselineRefresh>(cfg.refPostpone);
      case SchemeKind::HiraMc:
        return std::make_unique<HiraMc>(cfg.hira);
    }
    panic("unreachable scheme kind");
}

System::System(const SystemConfig &config)
    : cfg(config), mapper(config.geom)
{
    // Controllers, one per channel.
    for (int ch = 0; ch < cfg.geom.channels; ++ch) {
        ControllerConfig cc;
        cc.geom = cfg.geom;
        cc.tp = cfg.tp;
        cc.para = cfg.para;
        cc.para.seed = hashCombine(cfg.seed, 0xca0 + ch);
        // When HiRA-MC runs PreventiveRC, the controller must not also
        // perform immediate preventive refreshes.
        cc.paraImmediate = cfg.scheme != SchemeKind::HiraMc;
        cc.recordTrace = cfg.recordTraces;
        controllers.push_back(std::make_unique<MemoryController>(
            ch, cc, makeScheme()));
    }

    // Shared LLC routes misses by channel and notifies cores on fills.
    llc = std::make_unique<Llc>(
        cfg.llc,
        [this](const Request &req) { return route(req); },
        [this](int core_id, std::uint64_t tag, Cycle) {
            cores[static_cast<std::size_t>(core_id)]->onDataReturn(tag);
        });

    // Cores with private address-space slices; workload specs resolve
    // through the registry (synthetic pool names or "file:" traces).
    std::size_t ncores = cfg.mix.size();
    hira_assert(ncores > 0);
    Addr slice = mapper.addressSpaceBytes() / ncores;
    for (std::size_t i = 0; i < ncores; ++i) {
        std::unique_ptr<TraceSource> src =
            WorkloadRegistry::global().makeSource(
                cfg.mix[i], hashCombine(cfg.seed, 0xc04e + i), slice * i,
                slice);
        if (!cfg.traceDumpDir.empty()) {
            std::string path = strprintf(
                "%s/core%zu.%s", cfg.traceDumpDir.c_str(), i,
                cfg.traceDumpFormat == TraceFormat::Binary ? "bin"
                                                           : "trace");
            src = std::make_unique<TraceRecorder>(std::move(src), path,
                                                  cfg.traceDumpFormat);
        }
        sources.push_back(std::move(src));
        cores.push_back(std::make_unique<CoreModel>(
            static_cast<int>(i), *sources.back(), *llc, cfg.coreWidth,
            cfg.windowEntries));
    }
}

bool
System::route(const Request &req)
{
    Request r = req;
    r.da = mapper.decode(r.addr);
    r.arrival = memCycle;
    return controllers[static_cast<std::size_t>(r.da.channel)]->enqueue(r);
}

void
System::run(Cycle cycles)
{
    for (Cycle c = 0; c < cycles; ++c) {
        ++memCycle;
        for (auto &ctrl : controllers) {
            ctrl->tick(memCycle);
            // Deliver completed reads to the LLC.
            auto &done = ctrl->completions();
            for (const Completion &comp : done) {
                if (comp.at <= memCycle)
                    llc->onMemCompletion(comp.tag, memCycle);
            }
            // Keep not-yet-arrived completions (data still on the bus).
            std::size_t kept = 0;
            for (const Completion &comp : done) {
                if (comp.at > memCycle)
                    done[kept++] = comp;
            }
            done.resize(kept);
        }
        llc->tick(memCycle);

        // 3.2 GHz cores over a 1.2 GHz bus: 8 CPU ticks per 3 bus ticks.
        cpuAccum += 8;
        while (cpuAccum >= 3) {
            cpuAccum -= 3;
            for (auto &core : cores)
                core->tick(memCycle);
        }
    }
}

void
System::resetStats()
{
    for (auto &core : cores)
        core->resetStats();
}

SystemResult
System::result() const
{
    SystemResult r;
    for (const auto &core : cores)
        r.ipc.push_back(core->ipc());
    for (const auto &ctrl : controllers) {
        const ControllerStats &cs = ctrl->stats();
        r.memReads += cs.readsServed;
        r.memWrites += cs.writesServed;
        r.controller.readsServed += cs.readsServed;
        r.controller.writesServed += cs.writesServed;
        r.controller.readLatencySum += cs.readLatencySum;
        r.controller.acts += cs.acts;
        r.controller.pres += cs.pres;
        r.controller.refs += cs.refs;
        r.controller.hiraOps += cs.hiraOps;
        r.controller.forwards += cs.forwards;
        r.controller.rejectedRequests += cs.rejectedRequests;
        const RefreshStats &rs = ctrl->scheme().stats();
        r.refresh.refCommands += rs.refCommands;
        r.refresh.rowRefreshes += rs.rowRefreshes;
        r.refresh.accessPaired += rs.accessPaired;
        r.refresh.refreshPaired += rs.refreshPaired;
        r.refresh.standalone += rs.standalone;
        r.refresh.deadlineMisses += rs.deadlineMisses;
        r.refresh.preventiveGenerated += rs.preventiveGenerated;
        r.refresh.preventiveDropped += rs.preventiveDropped;
        // HiRA-MC may run an internal baseline REF engine (Fig. 12).
        if (const auto *hmc =
                dynamic_cast<const HiraMc *>(&ctrl->scheme())) {
            if (const RefreshStats *bs = hmc->baselineStats())
                r.refresh.refCommands += bs->refCommands;
        }
    }
    if (r.controller.readsServed > 0) {
        r.avgReadLatencyCycles =
            static_cast<double>(r.controller.readLatencySum) /
            static_cast<double>(r.controller.readsServed);
    }
    r.llcHits = llc->hits;
    r.llcMisses = llc->misses;
    return r;
}

} // namespace hira
