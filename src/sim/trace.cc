#include "sim/trace.hh"

#include <algorithm>

#include "common/logging.hh"

namespace hira {

TraceGen::TraceGen(const BenchmarkProfile &profile, std::uint64_t seed,
                   Addr base_addr, Addr slice_bytes)
    : prof(profile), rng(seed), base(base_addr)
{
    hira_assert(slice_bytes >= 64);
    std::uint64_t slice_lines = slice_bytes / 64;
    footprint = std::min<std::uint64_t>(prof.footprintLines, slice_lines);
    hot = std::min<std::uint64_t>(prof.hotLines, footprint);
    hira_assert(footprint > 0 && hot > 0);
    streamPtr = rng.next() % footprint;
}

Addr
TraceGen::lineAddr(std::uint64_t line_index) const
{
    return base + (line_index % footprint) * 64;
}

TraceInst
TraceGen::next()
{
    TraceInst inst;
    if (!rng.chance(prof.memPerInstr))
        return inst;
    inst.isMem = true;
    inst.isWrite = rng.chance(prof.writeFraction);
    double kind = rng.uniform();
    if (kind < prof.hotFraction) {
        // Cache-resident hot set (private caches / LLC absorb these).
        inst.addr = lineAddr(rng.below(hot));
    } else if (kind < prof.hotFraction + prof.streamFraction *
                          (1.0 - prof.hotFraction)) {
        // Sequential stream: consecutive lines, high row-buffer locality.
        streamPtr = (streamPtr + 1) % footprint;
        inst.addr = lineAddr(streamPtr);
    } else {
        // Irregular access over the full footprint.
        inst.addr = lineAddr(rng.below(footprint));
    }
    return inst;
}

} // namespace hira
