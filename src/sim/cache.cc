#include "sim/cache.hh"

#include "common/logging.hh"

namespace hira {

Llc::Llc(const LlcConfig &config, SendFn send_fn, NotifyFn notify_fn)
    : cfg(config), send(std::move(send_fn)), notify(std::move(notify_fn))
{
    hira_assert(cfg.ways > 0 && cfg.lineBytes > 0);
    sets = cfg.sizeBytes /
           (static_cast<std::uint64_t>(cfg.ways) *
            static_cast<std::uint64_t>(cfg.lineBytes));
    hira_assert(sets > 0 && (sets & (sets - 1)) == 0);
    lines.assign(sets * static_cast<std::size_t>(cfg.ways), Line{});
}

Addr
Llc::lineOf(Addr addr) const
{
    return addr / static_cast<Addr>(cfg.lineBytes);
}

std::size_t
Llc::setOf(Addr line) const
{
    return static_cast<std::size_t>(line) & (sets - 1);
}

Llc::Line *
Llc::lookup(Addr line)
{
    std::size_t base = setOf(line) * static_cast<std::size_t>(cfg.ways);
    for (int w = 0; w < cfg.ways; ++w) {
        Line &l = lines[base + static_cast<std::size_t>(w)];
        if (l.valid && l.tag == line)
            return &l;
    }
    return nullptr;
}

bool
Llc::sendOrQueue(const Request &req)
{
    if (outbound.empty() && send(req))
        return true;
    if (outbound.size() >= cfg.outboundCap)
        return false;
    outbound.push_back(req);
    return true;
}

void
Llc::tick(Cycle)
{
    while (!outbound.empty()) {
        if (!send(outbound.front()))
            return;
        outbound.pop_front();
        ++capGen; // an outbound slot freed; Blocked verdicts may change
    }
}

LlcResult
Llc::access(bool is_write, Addr addr, int core_id, std::uint64_t tag,
            Cycle mem_now)
{
    Addr line = lineOf(addr);
    if (Line *l = lookup(line)) {
        l->lru = ++lruClock;
        l->dirty = l->dirty || is_write;
        ++hits;
        return LlcResult::Hit;
    }

    // Merge into an outstanding miss to the same line.
    auto by_line = mshrByLine.find(line);
    if (by_line != mshrByLine.end()) {
        Mshr &m = mshrs[by_line->second];
        m.writeIntent = m.writeIntent || is_write;
        if (!is_write)
            m.waiters.push_back({core_id, tag});
        ++mshrMerges;
        ++misses;
        return LlcResult::Miss;
    }

    if (mshrs.size() >= cfg.mshrs ||
        outbound.size() >= cfg.outboundCap) {
        ++blocked;
        return LlcResult::Blocked;
    }

    // Allocate an MSHR and fetch the line.
    std::uint64_t mem_tag = nextMemTag++;
    Request req;
    req.type = MemType::Read;
    req.addr = line * static_cast<Addr>(cfg.lineBytes);
    req.coreId = core_id;
    req.tag = mem_tag;
    req.arrival = mem_now;
    if (!sendOrQueue(req)) {
        ++blocked;
        return LlcResult::Blocked;
    }
    Mshr m;
    m.lineAddr = line;
    m.writeIntent = is_write;
    if (!is_write)
        m.waiters.push_back({core_id, tag});
    mshrs.emplace(mem_tag, std::move(m));
    mshrByLine.emplace(line, mem_tag);
    ++misses;
    return LlcResult::Miss;
}

void
Llc::install(Addr line, bool dirty, Cycle mem_now)
{
    std::size_t base = setOf(line) * static_cast<std::size_t>(cfg.ways);
    Line *victim = nullptr;
    for (int w = 0; w < cfg.ways; ++w) {
        Line &l = lines[base + static_cast<std::size_t>(w)];
        if (!l.valid) {
            victim = &l;
            break;
        }
        if (victim == nullptr || l.lru < victim->lru)
            victim = &l;
    }
    hira_assert(victim != nullptr);
    if (victim->valid && victim->dirty) {
        // Dirty eviction: write the line back to memory.
        Request wb;
        wb.type = MemType::Write;
        wb.addr = victim->tag * static_cast<Addr>(cfg.lineBytes);
        wb.coreId = -1;
        wb.tag = 0;
        wb.arrival = mem_now;
        // Writebacks must never be dropped: bypass the outbound cap (the
        // queue drains through tick()).
        if (!(outbound.empty() && send(wb)))
            outbound.push_back(wb);
        ++writebacks;
    }
    victim->valid = true;
    victim->dirty = dirty;
    victim->tag = line;
    victim->lru = ++lruClock;
}

void
Llc::onMemCompletion(std::uint64_t mem_tag, Cycle mem_now)
{
    auto it = mshrs.find(mem_tag);
    hira_assert(it != mshrs.end());
    Mshr m = std::move(it->second);
    mshrs.erase(it);
    mshrByLine.erase(m.lineAddr);
    install(m.lineAddr, m.writeIntent, mem_now);
    // An MSHR freed and a line installed: an access that was Blocked
    // (or missing) before can now succeed, so bump the generation.
    ++capGen;
    for (const Waiter &w : m.waiters)
        notify(w.coreId, w.tag, mem_now);
}

} // namespace hira
