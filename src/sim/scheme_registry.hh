/**
 * @file
 * Name-keyed refresh-scheme registry.
 *
 * One entry per SchemeKind ties together everything the sweep layer
 * used to hand-enumerate: the stable registry name (bench sections,
 * sweep specs), the scheme-object factory System::makeScheme dispatches
 * through, the SchemeSpec -> SystemConfig wiring makeSystemConfig
 * dispatches through, the human label base, and the scheme's seed-key
 * contribution (every behavior-affecting knob the base SchemeSpec key
 * does not already cover). Adding a scheme means one entry here plus
 * the kernel tag (sim/kernel.hh) — the sweep, label, seeding, and
 * diagnostics layers pick it up from the registry.
 *
 * Lookups by unknown name are fatal and list the known names,
 * mirroring benchmarkByName(): a typo in a sweep spec or bench driver
 * must never silently fall back to a default scheme.
 */

#ifndef HIRA_SIM_SCHEME_REGISTRY_HH
#define HIRA_SIM_SCHEME_REGISTRY_HH

#include <memory>
#include <string>
#include <vector>

#include "sim/experiment.hh"

namespace hira {

/** One registry entry: everything keyed by a SchemeKind. */
struct SchemeRegistryEntry
{
    const char *name;  //!< registry key ("baseline", "rfm", ...)
    SchemeKind kind;
    /** Scheme-object factory (System::makeScheme dispatches here). */
    std::unique_ptr<RefreshScheme> (*make)(const SystemConfig &cfg);
    /**
     * SchemeSpec -> SystemConfig wiring: set cfg.scheme and the
     * scheme-specific config block. cfg.tp/geom/seed are already set.
     */
    void (*configure)(SystemConfig &cfg, const SchemeSpec &spec,
                      std::uint64_t seed);
    /** Human label base ("HiRA-4"); SchemeSpec::label() adds +PARA. */
    std::string (*labelBase)(const SchemeSpec &spec);
    /**
     * Scheme-specific seed-key fields appended to the base
     * SchemeSpec::seedKey() ("" when the base key already covers the
     * scheme, which keeps the pre-registry golden seeds valid).
     */
    std::string (*seedKeySuffix)(const SchemeSpec &spec);
};

/** All registered schemes, in SchemeKind order. */
const std::vector<SchemeRegistryEntry> &schemeRegistry();

/** Comma-joined registry names, for diagnostics and docs. */
std::string knownSchemeNames();

/** Entry for a SchemeKind; panics on an unregistered kind. */
const SchemeRegistryEntry &schemeEntryByKind(SchemeKind kind);

/**
 * Entry by registry name. Unknown names are fatal and print the
 * known-name list.
 */
const SchemeRegistryEntry &schemeEntryByName(const std::string &name);

/** A default SchemeSpec of the named scheme (sweep-spec parsing). */
SchemeSpec schemeSpecByName(const std::string &name);

} // namespace hira

#endif // HIRA_SIM_SCHEME_REGISTRY_HH
