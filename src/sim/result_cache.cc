#include "sim/result_cache.hh"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include <sys/stat.h>
#include <unistd.h>

#include "common/logging.hh"
#include "workload/corpus.hh"

#ifndef HIRA_GIT_REV
#define HIRA_GIT_REV "unknown"
#endif

namespace hira {

namespace {

constexpr char kMagicPoint[] = "HIRARC1 point";
constexpr char kMagicAlone[] = "HIRARC1 alone";

/**
 * Content-addressed file stem: two independent 64-bit hashes of the
 * key. Collisions are doubly guarded — the entry file repeats the full
 * key and lookup rejects a mismatch as stale.
 */
std::string
hashName(const std::string &key)
{
    return strprintf("%016llx%016llx",
                     static_cast<unsigned long long>(hashString(key)),
                     static_cast<unsigned long long>(
                         hashString("hira-rc|" + key)));
}

/** Exact double serialization: hexfloat round-trips bitwise. */
std::string
hexDouble(double v)
{
    return strprintf("%a", v);
}

bool
parseDouble(const std::string &tok, double &out)
{
    if (tok.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    out = std::strtod(tok.c_str(), &end);
    return end == tok.c_str() + tok.size() && errno != ERANGE;
}

bool
parseU64(const std::string &tok, std::uint64_t &out)
{
    if (tok.empty() ||
        !std::isdigit(static_cast<unsigned char>(tok[0]))) {
        return false;
    }
    errno = 0;
    char *end = nullptr;
    out = std::strtoull(tok.c_str(), &end, 10);
    return end == tok.c_str() + tok.size() && errno != ERANGE;
}

/** Line cursor over an entry file's bytes. */
struct EntryCursor
{
    const std::string &text;
    std::size_t pos = 0;

    bool
    line(std::string &out)
    {
        if (pos >= text.size())
            return false;
        std::size_t nl = text.find('\n', pos);
        if (nl == std::string::npos)
            return false; // entries end in a newline; no tail fragments
        out.assign(text, pos, nl - pos);
        pos = nl + 1;
        return true;
    }
};

/** Serialize one entry (shared by points and alone values). */
std::string
renderEntry(const std::string &key, bool is_point,
            const PointResult &point, double ipc)
{
    std::string out = is_point ? kMagicPoint : kMagicAlone;
    out += strprintf("\nkey %zu\n", key.size());
    out += key;
    out += '\n';
    if (!is_point) {
        out += "ipc " + hexDouble(ipc) + "\n";
        out += "end\n";
        return out;
    }
    const RefreshStats &rs = point.refresh;
    out += "mean_ws " + hexDouble(point.meanWs) + "\n";
    out += "wall_seconds " + hexDouble(point.wallSeconds) + "\n";
    out += strprintf("sim_cycles %llu\n",
                     static_cast<unsigned long long>(point.simCycles));
    out += strprintf(
        "refresh %llu %llu %llu %llu %llu %llu %llu %llu\n",
        static_cast<unsigned long long>(rs.refCommands),
        static_cast<unsigned long long>(rs.rowRefreshes),
        static_cast<unsigned long long>(rs.accessPaired),
        static_cast<unsigned long long>(rs.refreshPaired),
        static_cast<unsigned long long>(rs.standalone),
        static_cast<unsigned long long>(rs.deadlineMisses),
        static_cast<unsigned long long>(rs.preventiveGenerated),
        static_cast<unsigned long long>(rs.preventiveDropped));
    out += strprintf("metrics %zu\n", point.metrics.values.size());
    for (const auto &kv : point.metrics.values) {
        const std::string &name = kv.first;
        const MetricValue &v = kv.second;
        // Names are dotted identifiers from MetricScope composition;
        // whitespace would break the token format.
        hira_assert(name.find_first_of(" \t\n") == std::string::npos);
        switch (v.kind) {
          case MetricValue::Kind::Counter:
            out += strprintf("c %s %llu\n", name.c_str(),
                             static_cast<unsigned long long>(v.count));
            break;
          case MetricValue::Kind::Gauge:
            out += strprintf("g %s %s\n", name.c_str(),
                             hexDouble(v.value).c_str());
            break;
          case MetricValue::Kind::Histogram:
            out += strprintf("h %s %llu %s %s %s %zu", name.c_str(),
                             static_cast<unsigned long long>(v.count),
                             hexDouble(v.value).c_str(),
                             hexDouble(v.lo).c_str(),
                             hexDouble(v.hi).c_str(), v.bins.size());
            for (std::uint64_t b : v.bins) {
                out += strprintf(" %llu",
                                 static_cast<unsigned long long>(b));
            }
            out += '\n';
            break;
        }
    }
    out += "end\n";
    return out;
}

/**
 * Parse an entry's payload (everything after the verified key block).
 * Returns false on any malformation — the caller treats that as a
 * corrupt entry, i.e. a miss.
 */
bool
parsePayload(EntryCursor &cur, bool is_point, PointResult &point,
             double &ipc)
{
    std::string line;
    if (!is_point) {
        if (!cur.line(line))
            return false;
        std::istringstream in(line);
        std::string tag, tok;
        if (!(in >> tag >> tok) || tag != "ipc" || !parseDouble(tok, ipc))
            return false;
        return cur.line(line) && line == "end";
    }

    std::string tag, tok;
    // mean_ws, wall_seconds
    if (!cur.line(line))
        return false;
    {
        std::istringstream in(line);
        if (!(in >> tag >> tok) || tag != "mean_ws" ||
            !parseDouble(tok, point.meanWs)) {
            return false;
        }
    }
    if (!cur.line(line))
        return false;
    {
        std::istringstream in(line);
        if (!(in >> tag >> tok) || tag != "wall_seconds" ||
            !parseDouble(tok, point.wallSeconds)) {
            return false;
        }
    }
    if (!cur.line(line))
        return false;
    {
        std::istringstream in(line);
        if (!(in >> tag >> tok) || tag != "sim_cycles" ||
            !parseU64(tok, point.simCycles)) {
            return false;
        }
    }
    if (!cur.line(line))
        return false;
    {
        std::istringstream in(line);
        if (!(in >> tag) || tag != "refresh")
            return false;
        RefreshStats &rs = point.refresh;
        std::uint64_t *fields[8] = {
            &rs.refCommands,    &rs.rowRefreshes,
            &rs.accessPaired,   &rs.refreshPaired,
            &rs.standalone,     &rs.deadlineMisses,
            &rs.preventiveGenerated, &rs.preventiveDropped};
        for (std::uint64_t *f : fields) {
            if (!(in >> tok) || !parseU64(tok, *f))
                return false;
        }
    }
    if (!cur.line(line))
        return false;
    std::uint64_t nMetrics = 0;
    {
        std::istringstream in(line);
        if (!(in >> tag >> tok) || tag != "metrics" ||
            !parseU64(tok, nMetrics)) {
            return false;
        }
    }
    for (std::uint64_t i = 0; i < nMetrics; ++i) {
        if (!cur.line(line))
            return false;
        std::istringstream in(line);
        std::string kind, name;
        if (!(in >> kind >> name))
            return false;
        MetricValue v;
        if (kind == "c") {
            v.kind = MetricValue::Kind::Counter;
            if (!(in >> tok) || !parseU64(tok, v.count))
                return false;
        } else if (kind == "g") {
            v.kind = MetricValue::Kind::Gauge;
            if (!(in >> tok) || !parseDouble(tok, v.value))
                return false;
        } else if (kind == "h") {
            v.kind = MetricValue::Kind::Histogram;
            std::uint64_t nBins = 0;
            if (!(in >> tok) || !parseU64(tok, v.count))
                return false;
            if (!(in >> tok) || !parseDouble(tok, v.value))
                return false;
            if (!(in >> tok) || !parseDouble(tok, v.lo))
                return false;
            if (!(in >> tok) || !parseDouble(tok, v.hi))
                return false;
            if (!(in >> tok) || !parseU64(tok, nBins) ||
                nBins > 1000000) {
                return false;
            }
            v.bins.resize(nBins);
            for (std::uint64_t b = 0; b < nBins; ++b) {
                if (!(in >> tok) || !parseU64(tok, v.bins[b]))
                    return false;
            }
        } else {
            return false;
        }
        std::string extra;
        if (in >> extra)
            return false;
        point.metrics.values[name] = std::move(v);
    }
    // The trailing marker is the truncation guard: a partially-written
    // file (pre-rename crash never commits one, but copies/tampering
    // can) must never parse as a shorter valid entry.
    return cur.line(line) && line == "end";
}

} // namespace

const char *
resultCacheModeName(ResultCacheMode mode)
{
    switch (mode) {
      case ResultCacheMode::Off: return "off";
      case ResultCacheMode::Read: return "read";
      case ResultCacheMode::ReadWrite: return "readwrite";
    }
    panic("unreachable result-cache mode");
}

ResultCacheMode
defaultResultCacheMode()
{
    const char *env = std::getenv("HIRA_RESULT_CACHE_MODE");
    if (env == nullptr || *env == '\0')
        return ResultCacheMode::ReadWrite;
    std::string v = env;
    if (v == "off")
        return ResultCacheMode::Off;
    if (v == "read")
        return ResultCacheMode::Read;
    if (v == "readwrite")
        return ResultCacheMode::ReadWrite;
    warn_once("HIRA_RESULT_CACHE_MODE='%s' is not one of off, read, "
              "readwrite; using readwrite",
              env);
    return ResultCacheMode::ReadWrite;
}

std::string
codeRevision()
{
    const char *env = std::getenv("HIRA_CACHE_REV");
    if (env != nullptr && *env != '\0')
        return env;
    return HIRA_GIT_REV;
}

ResultCache::ResultCache(std::string dir, ResultCacheMode mode,
                         std::size_t lruCapacity)
    : dir_(std::move(dir)), mode_(mode), lruCapacity_(lruCapacity)
{
    hira_assert(!dir_.empty());
    // Best-effort, one level deep — same convention as HIRA_JSON. A
    // missing parent shows up as ENOENT on the first store.
    ::mkdir(dir_.c_str(), 0777);
}

std::unique_ptr<ResultCache>
ResultCache::fromEnv()
{
    const char *dir = std::getenv("HIRA_RESULT_CACHE");
    if (dir == nullptr || *dir == '\0')
        return nullptr;
    ResultCacheMode mode = defaultResultCacheMode();
    if (mode == ResultCacheMode::Off)
        return nullptr;
    return std::make_unique<ResultCache>(dir, mode);
}

std::string
ResultCache::pointPath(const std::string &key) const
{
    return dir_ + "/" + hashName(key) + ".point";
}

std::string
ResultCache::alonePath(const std::string &key) const
{
    return dir_ + "/" + hashName(key) + ".alone";
}

bool
ResultCache::lruGet(const std::string &tag, LruEntry &out)
{
    auto it = lruIndex_.find(tag);
    if (it == lruIndex_.end())
        return false;
    lru_.splice(lru_.begin(), lru_, it->second);
    out = *it->second;
    return true;
}

void
ResultCache::lruPut(LruEntry entry)
{
    auto it = lruIndex_.find(entry.tag);
    if (it != lruIndex_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);
        *it->second = std::move(entry);
        return;
    }
    lru_.push_front(std::move(entry));
    lruIndex_[lru_.front().tag] = lru_.begin();
    while (lru_.size() > lruCapacity_) {
        lruIndex_.erase(lru_.back().tag);
        lru_.pop_back();
    }
}

bool
ResultCache::lookupEntry(const std::string &key, bool is_point,
                         PointResult &point, double &ipc)
{
    std::string tag = (is_point ? "p|" : "a|") + key;
    std::lock_guard<std::mutex> lock(mutex_);
    LruEntry cached;
    if (lruGet(tag, cached)) {
        ++stats_.hits;
        if (is_point)
            point = cached.point;
        else
            ipc = cached.ipc;
        return true;
    }

    std::string path = is_point ? pointPath(key) : alonePath(key);
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        ++stats_.misses;
        return false;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    std::string text = buf.str();
    stats_.bytesRead += text.size();

    EntryCursor cur{text, 0};
    std::string line;
    if (!cur.line(line) ||
        line != (is_point ? kMagicPoint : kMagicAlone)) {
        ++stats_.corrupt;
        warn_once("result cache: %s is not a v1 entry; treating as a "
                  "miss (delete the file to silence this)",
                  path.c_str());
        return false;
    }
    std::uint64_t keyLen = 0;
    {
        if (!cur.line(line)) {
            ++stats_.corrupt;
            return false;
        }
        std::istringstream hdr(line);
        std::string tagTok, tok;
        if (!(hdr >> tagTok >> tok) || tagTok != "key" ||
            !parseU64(tok, keyLen) ||
            cur.pos + keyLen + 1 > text.size() ||
            text[cur.pos + keyLen] != '\n') {
            ++stats_.corrupt;
            warn_once("result cache: %s has a malformed key block; "
                      "treating as a miss",
                      path.c_str());
            return false;
        }
    }
    std::string storedKey = text.substr(cur.pos, keyLen);
    cur.pos += keyLen + 1;
    if (storedKey != key) {
        // A different sweep's entry landed on this hash (or the file
        // was copied between slots): never serve it.
        ++stats_.stale;
        warn_once("result cache: %s holds an entry for a different key "
                  "(hash collision or stale copy); treating as a miss",
                  path.c_str());
        return false;
    }
    PointResult parsed;
    double parsedIpc = 0.0;
    if (!parsePayload(cur, is_point, parsed, parsedIpc)) {
        ++stats_.corrupt;
        warn_once("result cache: %s is corrupt or truncated; treating "
                  "as a miss",
                  path.c_str());
        return false;
    }
    ++stats_.hits;
    LruEntry entry;
    entry.tag = std::move(tag);
    if (is_point) {
        point = parsed;
        entry.point = std::move(parsed);
    } else {
        ipc = parsedIpc;
        entry.ipc = parsedIpc;
    }
    lruPut(std::move(entry));
    return true;
}

void
ResultCache::storeEntry(const std::string &key, bool is_point,
                        const PointResult &point, double ipc)
{
    if (mode_ != ResultCacheMode::ReadWrite)
        return;
    std::string content = renderEntry(key, is_point, point, ipc);
    std::string path = is_point ? pointPath(key) : alonePath(key);
    // Unique temp name per writer: concurrent processes (daemon
    // workers) and threads may commit the same key; each writes its
    // own temp file and the renames are atomic replacements of
    // byte-identical content.
    static std::atomic<std::uint64_t> tmpSeq{0};
    std::string tmp = strprintf(
        "%s.tmp.%ld.%llu", path.c_str(), static_cast<long>(::getpid()),
        static_cast<unsigned long long>(tmpSeq.fetch_add(1)));

    std::lock_guard<std::mutex> lock(mutex_);
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr) {
        warn_once("result cache: cannot write %s: %s", tmp.c_str(),
                  std::strerror(errno));
        return;
    }
    std::size_t wrote = std::fwrite(content.data(), 1, content.size(), f);
    bool ok = wrote == content.size() && std::fclose(f) == 0;
    if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
        warn_once("result cache: cannot commit %s: %s", path.c_str(),
                  std::strerror(errno));
        std::remove(tmp.c_str());
        return;
    }
    ++stats_.writes;
    stats_.bytesWritten += content.size();
    LruEntry entry;
    entry.tag = (is_point ? "p|" : "a|") + key;
    entry.point = point;
    entry.ipc = ipc;
    lruPut(std::move(entry));
}

bool
ResultCache::lookupPoint(const std::string &key, PointResult &out)
{
    double ipc = 0.0;
    return lookupEntry(key, true, out, ipc);
}

void
ResultCache::storePoint(const std::string &key, const PointResult &r)
{
    storeEntry(key, true, r, 0.0);
}

bool
ResultCache::lookupAlone(const std::string &key, double &ipc)
{
    PointResult unused;
    return lookupEntry(key, false, unused, ipc);
}

void
ResultCache::storeAlone(const std::string &key, double ipc)
{
    PointResult unused;
    storeEntry(key, false, unused, ipc);
}

ResultCacheStats
ResultCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

MetricsSnapshot
ResultCache::metricsSnapshot() const
{
    ResultCacheStats s = stats();
    MetricsSnapshot snap;
    auto add = [&snap](const char *name, std::uint64_t v) {
        MetricValue mv;
        mv.kind = MetricValue::Kind::Counter;
        mv.count = v;
        snap.values[std::string("result_cache.") + name] = mv;
    };
    add("hits", s.hits);
    add("misses", s.misses);
    add("stale", s.stale);
    add("corrupt", s.corrupt);
    add("writes", s.writes);
    add("bytes_read", s.bytesRead);
    add("bytes_written", s.bytesWritten);
    return snap;
}

// ---------------------------------------------------------------------
// Canonical cache keys
// ---------------------------------------------------------------------

std::string
resolvedMixSpecKey(const std::string &spec)
{
    const char kPrefix[] = "corpus:";
    if (spec.compare(0, sizeof(kPrefix) - 1, kPrefix) != 0)
        return spec;
    std::string rest = spec.substr(sizeof(kPrefix) - 1);
    std::string opts;
    std::size_t q = rest.find('?');
    if (q != std::string::npos) {
        opts = rest.substr(q);
        rest = rest.substr(0, q);
    }
    std::shared_ptr<const Corpus> corpus =
        Corpus::activeOrFatal("resolving a sweep cache key");
    const CorpusEntry &e = corpus->at(rest);
    return strprintf(
        "corpus:%s%s{file=%s;fmt=%s;instr=%llu;class=%c;prior=%s}",
        rest.c_str(), opts.c_str(), e.file.c_str(),
        e.format == TraceFormat::Binary ? "binary" : "text",
        static_cast<unsigned long long>(e.instructions),
        mpkiClassLetter(e.mpki),
        e.hasAloneIpc() ? strprintf("%.17g", e.aloneIpc).c_str() : "-");
}

namespace {

/**
 * The key fields points and alone entries share. Engine, kernel, and
 * metrics level are bitwise result-neutral (pinned by the diff
 * suites), but they ARE behavior-affecting inputs of the *artifact*
 * (timing regimes, metrics payloads), so they key separate slots —
 * a conservative choice that can only cost extra simulations, never
 * correctness.
 */
std::string
commonKeyFields(const GeomSpec &geom, const BenchKnobs &knobs)
{
    return strprintf("rev=%s\ngeom=%s\nstandard=%s\nengine=%s\n"
                     "kernel=%s\nmetrics=%s\nwarmup=%lld\ncycles=%lld\n",
                     codeRevision().c_str(), geom.key().c_str(),
                     geom.standard.c_str(),
                     simEngineName(defaultSimEngine()),
                     simKernelName(defaultSimKernel()),
                     metricsLevelName(defaultMetricsLevel()),
                     static_cast<long long>(knobs.warmup),
                     static_cast<long long>(knobs.cycles));
}

} // namespace

std::string
SweepPoint::cacheKey(const BenchKnobs &knobs,
                     const std::vector<WorkloadMix> &mixes) const
{
    std::string k = "hira-point-v1\n";
    k += commonKeyFields(geom, knobs);
    k += "scheme=" + scheme.seedKey() + "\n";
    k += strprintf("mixes=%zu\n", mixes.size());
    for (std::size_t i = 0; i < mixes.size(); ++i) {
        k += strprintf("mix%zu=", i);
        for (std::size_t c = 0; c < mixes[i].size(); ++c) {
            if (c > 0)
                k += '|';
            k += resolvedMixSpecKey(mixes[i][c]);
        }
        k += '\n';
    }
    return k;
}

std::string
aloneResultCacheKey(const std::string &bench, const GeomSpec &geom,
                    const BenchKnobs &knobs)
{
    std::string k = "hira-alone-v1\n";
    k += commonKeyFields(geom, knobs);
    k += "bench=" + resolvedMixSpecKey(bench) + "\n";
    return k;
}

} // namespace hira
