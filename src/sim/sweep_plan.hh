/**
 * @file
 * Serialized sweep plans: the SweepPoint/mix vocabulary drivers hand to
 * SweepRunner::runPoints(), as a JSON wire format. This is the request
 * body of the hira_sweepd sweep service (tools/hira_sweepd.cc) and the
 * plan-slice file its worker processes consume — one schema for the
 * whole client → daemon → worker path, so a plan always means the same
 * points everywhere.
 *
 * Schema (all knobs optional except geometry/scheme name):
 *
 *     {
 *       "mixes":  [["spec", ...], ...],   // workload specs per mix
 *       "warmup": 2000,                   // cycles (default: knobs)
 *       "cycles": 20000,
 *       "points": [
 *         {"geom":   {"capacity_gb": 8.0, "channels": 1, "ranks": 1,
 *                     "standard": "ddr4_2400"},
 *          "scheme": {"name": "hira", "slack_n": 4, ...}}
 *       ]
 *     }
 *
 * "scheme" starts from schemeSpecByName(name) — unknown names are
 * fatal with the registry listing — and applies any of the SchemeSpec
 * override keys (slack_n, ref_postpone, periodic_via_hira,
 * para_enabled, nrh, preventive_via_hira, access_pairing,
 * refresh_pairing, pull_ahead, spt_isolation, raaimt, prac_threshold,
 * tracker_size). Round-trips exactly: doubles render with %.17g.
 */

#ifndef HIRA_SIM_SWEEP_PLAN_HH
#define HIRA_SIM_SWEEP_PLAN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/experiment.hh"

namespace hira {

/** One serializable unit of sweep work. */
struct SweepPlan
{
    std::vector<WorkloadMix> mixes;
    std::int64_t warmup = -1; //!< < 0: take the ambient knob default
    std::int64_t cycles = -1;
    std::vector<SweepPoint> points;
};

/**
 * Parse @p text as a sweep plan. Malformed JSON, unknown scheme names,
 * and structurally-invalid plans (no points, no mixes, empty mix) are
 * fatal, naming @p where.
 */
SweepPlan sweepPlanFromJson(const std::string &text,
                            const std::string &where);

/** Render @p plan as JSON (the exact inverse of sweepPlanFromJson). */
std::string sweepPlanToJson(const SweepPlan &plan);

} // namespace hira

#endif // HIRA_SIM_SWEEP_PLAN_HH
