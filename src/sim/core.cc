#include "sim/core.hh"

#include "common/logging.hh"

namespace hira {

CoreModel::CoreModel(int core_id, TraceSource &trace, Llc &shared_llc,
                     int issue_width, int window_entries,
                     bool allow_exhausted_ff)
    : id(core_id), gen(trace), llc(shared_llc), width(issue_width),
      windowSize(window_entries), allowExhaustedFf(allow_exhausted_ff)
{
    hira_assert(issue_width > 0 && window_entries > 0);
    window.assign(static_cast<std::size_t>(window_entries), Slot{});
}

void
CoreModel::retireReady()
{
    for (int i = 0; i < width && occupancy > 0; ++i) {
        Slot &s = window[head];
        if (!s.done || s.readyAt > cpuCycle)
            return;
        s.valid = false;
        head = (head + 1) % window.size();
        --occupancy;
        ++retired;
    }
}

bool
CoreModel::dispatchOne(Cycle mem_now)
{
    if (occupancy >= static_cast<std::size_t>(windowSize))
        return false;
    if (!hasPendingInst) {
        pendingInst = gen.next();
        hasPendingInst = true;
        blockedCached = false;
    }
    Slot &s = window[tail];
    s.valid = true;
    s.tag = 0;
    s.waitingMem = false;
    if (!pendingInst.isMem) {
        s.done = true;
        s.readyAt = cpuCycle;
    } else {
        if (blockedCached && blockedGen == llc.capacityGeneration())
            return false; // retry is provably Blocked; skip the probe
        std::uint64_t tag = nextTag++;
        LlcResult res = llc.access(pendingInst.isWrite, pendingInst.addr,
                                   id, tag, mem_now);
        if (res == LlcResult::Blocked) {
            blockedCached = true;
            blockedGen = llc.capacityGeneration();
            return false; // keep the instruction pending, stall
        }
        blockedCached = false;
        if (pendingInst.isWrite) {
            ++stores;
            // Stores are posted (store buffer): retire immediately.
            s.done = true;
            s.readyAt = cpuCycle;
        } else {
            ++loads;
            if (res == LlcResult::Hit) {
                s.done = true;
                s.readyAt = cpuCycle +
                            static_cast<Cycle>(30); // LLC hit latency
            } else {
                s.done = false;
                s.tag = tag;
                s.waitingMem = true;
                ++waitingMemCount;
            }
        }
    }
    if (s.done && s.readyAt > maxReadyAt)
        maxReadyAt = s.readyAt;
    hasPendingInst = false;
    tail = (tail + 1) % window.size();
    ++occupancy;
    return true;
}

void
CoreModel::tick(Cycle mem_now)
{
    ++cpuCycle;
    retireReady();
    int dispatched = 0;
    for (int i = 0; i < width; ++i) {
        if (!dispatchOne(mem_now))
            break;
        ++dispatched;
    }
    if (dispatched == 0)
        ++stallCycles;
}

void
CoreModel::onDataReturn(std::uint64_t tag)
{
    // The window is small (128); a linear scan per return is cheap.
    for (Slot &s : window) {
        if (s.valid && s.waitingMem && s.tag == tag) {
            s.done = true;
            s.waitingMem = false;
            s.readyAt = cpuCycle;
            if (s.readyAt > maxReadyAt)
                maxReadyAt = s.readyAt;
            --waitingMemCount;
            return;
        }
    }
    // Returns for slots that already left the measurement window (e.g.,
    // after a stats reset) are harmless.
}

void
CoreModel::fastForward(Cycle nticks)
{
    if (nticks == 0)
        return;
    count(ffTicksMetric, nticks);
    count(ffCallsMetric);
    if (steadyExhausted()) {
        // Each skipped tick retires `width` and dispatches `width`
        // non-memory instructions: occupancy, loads, stores and
        // stallCycles are unchanged; the ring advances width per tick.
        std::size_t wsize = window.size();
        cpuCycle += nticks;
        retired += static_cast<std::uint64_t>(width) * nticks;
        std::size_t adv = static_cast<std::size_t>(
            (static_cast<std::uint64_t>(width) * nticks) % wsize);
        head = (head + adv) % wsize;
        tail = (tail + adv) % wsize;
        for (std::size_t pos = 0; pos < wsize; ++pos) {
            // Ring membership relative to the advanced head.
            std::size_t off = (pos + wsize - head) % wsize;
            if (off >= occupancy)
                window[pos].valid = false;
        }
        // Stamp the slots (re)dispatched during the skip with the exact
        // per-tick readyAt the dense loop would have written (width
        // dispatches per tick, newest at the final cpuCycle). Exact —
        // not merely "retirable" — values matter: resetStats() rewinds
        // cpuCycle, which turns these stamps back into future times, so
        // approximating them would diverge from the cycle engine after
        // a reset. Older survivors keep their pre-skip state untouched.
        std::uint64_t redispatched =
            std::min(static_cast<std::uint64_t>(width) * nticks,
                     static_cast<std::uint64_t>(occupancy));
        for (std::uint64_t j = 0; j < redispatched; ++j) {
            // j counts back from the newest slot.
            std::size_t pos =
                (head + occupancy - 1 - static_cast<std::size_t>(j)) %
                wsize;
            Slot &s = window[pos];
            s.valid = true;
            s.done = true;
            s.waitingMem = false;
            s.tag = 0;
            s.readyAt = cpuCycle - j / static_cast<std::uint64_t>(width);
        }
        if (cpuCycle > maxReadyAt)
            maxReadyAt = cpuCycle;
        return;
    }
    // Stall regime: each skipped tick is {++cpuCycle, ++stallCycles}.
    cpuCycle += nticks;
    stallCycles += nticks;
}

void
CoreModel::resetStats()
{
    retired = 0;
    cpuCycle = 0;
    loads = 0;
    stores = 0;
    stallCycles = 0;
}

} // namespace hira
