#include "sim/sweep_plan.hh"

#include <cmath>

#include "common/json.hh"
#include "common/logging.hh"
#include "sim/scheme_registry.hh"

namespace hira {

namespace {

[[noreturn]] void
planError(const std::string &where, const char *what)
{
    fatal("%s: invalid sweep plan: %s", where.c_str(), what);
}

double
numberField(const JsonValue &v, const char *key,
            const std::string &where)
{
    if (v.kind != JsonValue::Kind::Number)
        fatal("%s: invalid sweep plan: '%s' must be a number",
              where.c_str(), key);
    return v.number;
}

int
intField(const JsonValue &v, const char *key, const std::string &where)
{
    double d = numberField(v, key, where);
    if (d != std::floor(d)) {
        fatal("%s: invalid sweep plan: '%s' must be an integer",
              where.c_str(), key);
    }
    return static_cast<int>(d);
}

bool
boolField(const JsonValue &v, const char *key, const std::string &where)
{
    if (v.kind != JsonValue::Kind::Bool)
        fatal("%s: invalid sweep plan: '%s' must be a boolean",
              where.c_str(), key);
    return v.boolean;
}

GeomSpec
geomFromJson(const JsonValue &v, const std::string &where)
{
    if (v.kind != JsonValue::Kind::Object)
        planError(where, "'geom' must be an object");
    GeomSpec geom;
    for (const auto &kv : v.object) {
        const std::string &key = kv.first;
        if (key == "capacity_gb") {
            geom.capacityGb = numberField(kv.second, "capacity_gb", where);
        } else if (key == "channels") {
            geom.channels = intField(kv.second, "channels", where);
        } else if (key == "ranks") {
            geom.ranks = intField(kv.second, "ranks", where);
        } else if (key == "standard") {
            if (kv.second.kind != JsonValue::Kind::String) {
                planError(where, "'standard' must be a string");
            }
            geom.standard = kv.second.string;
        } else {
            fatal("%s: invalid sweep plan: unknown geom key '%s'",
                  where.c_str(), key.c_str());
        }
    }
    return geom;
}

SchemeSpec
schemeFromJson(const JsonValue &v, const std::string &where)
{
    if (v.kind != JsonValue::Kind::Object)
        planError(where, "'scheme' must be an object");
    const JsonValue *name = v.get("name");
    if (name == nullptr || name->kind != JsonValue::Kind::String)
        planError(where, "'scheme' needs a string 'name'");
    // Unknown names are fatal inside schemeSpecByName, listing the
    // registry — same contract as sweep specs everywhere else.
    SchemeSpec spec = schemeSpecByName(name->string);
    for (const auto &kv : v.object) {
        const std::string &key = kv.first;
        const JsonValue &val = kv.second;
        if (key == "name") {
            continue;
        } else if (key == "slack_n") {
            spec.slackN = intField(val, "slack_n", where);
        } else if (key == "ref_postpone") {
            spec.refPostpone = intField(val, "ref_postpone", where);
        } else if (key == "periodic_via_hira") {
            spec.periodicViaHira = boolField(val, "periodic_via_hira", where);
        } else if (key == "para_enabled") {
            spec.paraEnabled = boolField(val, "para_enabled", where);
        } else if (key == "nrh") {
            spec.nrh = numberField(val, "nrh", where);
        } else if (key == "preventive_via_hira") {
            spec.preventiveViaHira =
                boolField(val, "preventive_via_hira", where);
        } else if (key == "access_pairing") {
            spec.accessPairing = boolField(val, "access_pairing", where);
        } else if (key == "refresh_pairing") {
            spec.refreshPairing = boolField(val, "refresh_pairing", where);
        } else if (key == "pull_ahead") {
            spec.pullAhead = boolField(val, "pull_ahead", where);
        } else if (key == "spt_isolation") {
            spec.sptIsolation = numberField(val, "spt_isolation", where);
        } else if (key == "raaimt") {
            spec.raaimt = intField(val, "raaimt", where);
        } else if (key == "prac_threshold") {
            spec.pracThreshold = intField(val, "prac_threshold", where);
        } else if (key == "tracker_size") {
            spec.trackerSize = intField(val, "tracker_size", where);
        } else {
            fatal("%s: invalid sweep plan: unknown scheme key '%s'",
                  where.c_str(), key.c_str());
        }
    }
    return spec;
}

} // namespace

SweepPlan
sweepPlanFromJson(const std::string &text, const std::string &where)
{
    JsonValue root = parseJson(text, where);
    if (root.kind != JsonValue::Kind::Object)
        planError(where, "top level must be an object");
    SweepPlan plan;
    for (const auto &kv : root.object) {
        const std::string &key = kv.first;
        const JsonValue &val = kv.second;
        if (key == "mixes") {
            if (val.kind != JsonValue::Kind::Array)
                planError(where, "'mixes' must be an array of arrays");
            for (const JsonValue &mix : val.array) {
                if (mix.kind != JsonValue::Kind::Array || mix.array.empty())
                    planError(where, "each mix must be a non-empty array");
                WorkloadMix m;
                for (const JsonValue &spec : mix.array) {
                    if (spec.kind != JsonValue::Kind::String) {
                        planError(where,
                                  "mix entries must be workload-spec "
                                  "strings");
                    }
                    m.push_back(spec.string);
                }
                plan.mixes.push_back(std::move(m));
            }
        } else if (key == "warmup") {
            plan.warmup = static_cast<std::int64_t>(
                numberField(val, "warmup", where));
        } else if (key == "cycles") {
            plan.cycles = static_cast<std::int64_t>(
                numberField(val, "cycles", where));
        } else if (key == "points") {
            if (val.kind != JsonValue::Kind::Array)
                planError(where, "'points' must be an array");
            for (const JsonValue &pv : val.array) {
                if (pv.kind != JsonValue::Kind::Object)
                    planError(where, "each point must be an object");
                SweepPoint p;
                const JsonValue *g = pv.get("geom");
                p.geom = g != nullptr ? geomFromJson(*g, where)
                                      : GeomSpec{};
                const JsonValue *s = pv.get("scheme");
                if (s == nullptr)
                    planError(where, "each point needs a 'scheme'");
                p.scheme = schemeFromJson(*s, where);
                plan.points.push_back(std::move(p));
            }
        } else {
            fatal("%s: invalid sweep plan: unknown key '%s'",
                  where.c_str(), key.c_str());
        }
    }
    if (plan.points.empty())
        planError(where, "'points' is missing or empty");
    if (plan.mixes.empty())
        planError(where, "'mixes' is missing or empty");
    return plan;
}

std::string
sweepPlanToJson(const SweepPlan &plan)
{
    std::string out = "{\n  \"mixes\": [";
    for (std::size_t i = 0; i < plan.mixes.size(); ++i) {
        out += i == 0 ? "\n" : ",\n";
        out += "    [";
        for (std::size_t c = 0; c < plan.mixes[i].size(); ++c) {
            if (c > 0)
                out += ", ";
            out += "\"" + jsonEscape(plan.mixes[i][c]) + "\"";
        }
        out += "]";
    }
    out += "\n  ],\n";
    if (plan.warmup >= 0) {
        out += strprintf("  \"warmup\": %lld,\n",
                         static_cast<long long>(plan.warmup));
    }
    if (plan.cycles >= 0) {
        out += strprintf("  \"cycles\": %lld,\n",
                         static_cast<long long>(plan.cycles));
    }
    out += "  \"points\": [";
    for (std::size_t i = 0; i < plan.points.size(); ++i) {
        const SweepPoint &p = plan.points[i];
        const SchemeSpec &s = p.scheme;
        out += i == 0 ? "\n" : ",\n";
        out += strprintf(
            "    {\"geom\": {\"capacity_gb\": %s, \"channels\": %d, "
            "\"ranks\": %d, \"standard\": \"%s\"},\n",
            jsonDouble(p.geom.capacityGb).c_str(), p.geom.channels,
            p.geom.ranks, jsonEscape(p.geom.standard).c_str());
        // Every SchemeSpec field is emitted so the round trip is exact
        // even when a default changes between builds.
        out += strprintf(
            "     \"scheme\": {\"name\": \"%s\", \"slack_n\": %d, "
            "\"ref_postpone\": %d, \"periodic_via_hira\": %s, "
            "\"para_enabled\": %s, \"nrh\": %s, "
            "\"preventive_via_hira\": %s, \"access_pairing\": %s, "
            "\"refresh_pairing\": %s, \"pull_ahead\": %s, "
            "\"spt_isolation\": %s, \"raaimt\": %d, "
            "\"prac_threshold\": %d, \"tracker_size\": %d}}",
            schemeEntryByKind(s.kind).name, s.slackN, s.refPostpone,
            s.periodicViaHira ? "true" : "false",
            s.paraEnabled ? "true" : "false", jsonDouble(s.nrh).c_str(),
            s.preventiveViaHira ? "true" : "false",
            s.accessPairing ? "true" : "false",
            s.refreshPairing ? "true" : "false",
            s.pullAhead ? "true" : "false",
            jsonDouble(s.sptIsolation).c_str(), s.raaimt,
            s.pracThreshold, s.trackerSize);
    }
    out += "\n  ]\n}\n";
    return out;
}

} // namespace hira
