/**
 * @file
 * hira_tracegen: build a deterministic CPU2017-style trace corpus
 * ready for HIRA_CORPUS=<dir>.
 *
 * Two sources of traces, freely combined:
 *
 *  - synthesis: each requested synthetic-pool profile is recorded
 *    through the TraceRecorder path (text or binary) with a seed
 *    derived from the profile name, so the corpus is identical across
 *    machines and runs;
 *  - preprocessing: --import name=path replays an existing trace file
 *    and re-records it into the corpus (normalizing the format and
 *    instruction count).
 *
 * Every trace is binned by memory intensity (H/M/L, accesses per
 * kilo-instruction) and, unless --no-alone-ipc is given, measured
 * alone on the reference single-core system with exactly the seed and
 * config SweepRunner::aloneIpc would use — the manifest's alone-IPC
 * priors then reproduce a measured-alone sweep bitwise while skipping
 * every IPC-alone warmup run.
 */

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <sys/stat.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "sim/experiment.hh"
#include "sim/trace.hh"
#include "sim/workloads.hh"
#include "workload/corpus.hh"
#include "workload/file_trace.hh"

using namespace hira;

namespace {

/** Recording slice: region-relative addresses stay below 1 GB. */
constexpr Addr kRecordSlice = 1ull << 30;

struct Options
{
    std::string out;
    std::vector<std::string> benchmarks;
    std::vector<std::pair<std::string, std::string>> imports;
    std::uint64_t instructions = 200000;
    std::string format = "alternate"; //!< text | binary | alternate
    std::uint64_t seed = 0x7ace;
    std::int64_t aloneCycles = 150000;
    std::int64_t aloneWarmup = 30000;
    bool aloneIpc = true;
    bool json = true;
};

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s --out <dir> [options]\n"
        "\n"
        "Synthesize/preprocess a deterministic trace corpus for "
        "HIRA_CORPUS.\n"
        "\n"
        "  --out <dir>            corpus directory (created if missing)\n"
        "  --benchmarks <a,b,..>  synthetic pool profiles to record\n"
        "                         (default: the whole pool; 'none' for "
        "imports only)\n"
        "  --import <name>=<file> re-record an existing trace file into\n"
        "                         the corpus (repeatable)\n"
        "  --instructions <n>     instructions per trace (default "
        "200000)\n"
        "  --format <f>           text | binary | alternate (default)\n"
        "  --seed <s>             synthesis seed (default 0x7ace)\n"
        "  --alone-cycles <n>     measured bus cycles of the alone-IPC\n"
        "                         reference run (default 150000)\n"
        "  --alone-warmup <n>     its warmup bus cycles (default 30000)\n"
        "  --no-alone-ipc         skip the reference runs (manifest\n"
        "                         carries '-'; sweeps then measure)\n"
        "  --no-json              write only manifest.tsv\n",
        argv0);
}

std::uint64_t
parseU64(const std::string &value, const char *flag)
{
    // strtoull silently wraps negatives ('-1' -> ULLONG_MAX), which
    // would turn a typo into an effectively unbounded run.
    if (value.find('-') != std::string::npos)
        fatal("%s must be non-negative, got '%s'", flag, value.c_str());
    char *end = nullptr;
    errno = 0;
    std::uint64_t v = std::strtoull(value.c_str(), &end, 0);
    if (end == value.c_str() || *end != '\0' || errno == ERANGE)
        fatal("bad %s value '%s'", flag, value.c_str());
    return v;
}

std::vector<std::string>
splitCommas(const std::string &list)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= list.size()) {
        std::size_t comma = list.find(',', start);
        if (comma == std::string::npos)
            comma = list.size();
        if (comma > start)
            out.push_back(list.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    bool benchmarksSet = false;
    auto value = [&](int &i, const char *flag) -> std::string {
        if (i + 1 >= argc)
            fatal("%s needs a value (see --help)", flag);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            std::exit(0);
        } else if (arg == "--out") {
            opt.out = value(i, "--out");
        } else if (arg == "--benchmarks") {
            opt.benchmarks = splitCommas(value(i, "--benchmarks"));
            benchmarksSet = true;
        } else if (arg == "--import") {
            std::string spec = value(i, "--import");
            std::size_t eq = spec.find('=');
            if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size())
                fatal("--import expects <name>=<file>, got '%s'",
                      spec.c_str());
            opt.imports.emplace_back(spec.substr(0, eq),
                                     spec.substr(eq + 1));
        } else if (arg == "--instructions") {
            opt.instructions = parseU64(value(i, "--instructions"),
                                        "--instructions");
            if (opt.instructions == 0)
                fatal("--instructions must be positive");
        } else if (arg == "--format") {
            opt.format = value(i, "--format");
            if (opt.format != "text" && opt.format != "binary" &&
                opt.format != "alternate") {
                fatal("--format must be text, binary, or alternate");
            }
        } else if (arg == "--seed") {
            opt.seed = parseU64(value(i, "--seed"), "--seed");
        } else if (arg == "--alone-cycles") {
            opt.aloneCycles = static_cast<std::int64_t>(
                parseU64(value(i, "--alone-cycles"), "--alone-cycles"));
        } else if (arg == "--alone-warmup") {
            opt.aloneWarmup = static_cast<std::int64_t>(
                parseU64(value(i, "--alone-warmup"), "--alone-warmup"));
        } else if (arg == "--no-alone-ipc") {
            opt.aloneIpc = false;
        } else if (arg == "--no-json") {
            opt.json = false;
        } else {
            fatal("unknown option '%s' (see --help)", arg.c_str());
        }
    }
    if (opt.out.empty())
        fatal("--out <dir> is required (see --help)");
    if (!benchmarksSet) {
        for (const BenchmarkProfile &p : benchmarkPool())
            opt.benchmarks.push_back(p.name);
    } else if (opt.benchmarks.size() == 1 && opt.benchmarks[0] == "none") {
        opt.benchmarks.clear();
    }
    if (opt.benchmarks.empty() && opt.imports.empty())
        fatal("nothing to do: no --benchmarks and no --import");
    return opt;
}

/**
 * Pull @p count instructions from @p src through a TraceRecorder into
 * @p path, returning the memory-access count (for APKI binning).
 */
std::uint64_t
recordTrace(TraceSource &src, const std::string &path, TraceFormat format,
            std::uint64_t count)
{
    TraceRecorder rec(src, path, format);
    std::uint64_t mem = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        if (rec.next().isMem)
            ++mem;
    }
    rec.flush();
    return mem;
}

TraceFormat
formatFor(const Options &opt, std::size_t index)
{
    if (opt.format == "text")
        return TraceFormat::Text;
    if (opt.format == "binary")
        return TraceFormat::Binary;
    // Alternate so both on-disk formats are exercised by default.
    return index % 2 == 0 ? TraceFormat::Text : TraceFormat::Binary;
}

/**
 * Measure the entry's reference alone IPC exactly as
 * SweepRunner::aloneIpc would: single core, NoRefresh, the default
 * GeomSpec, seeded by the alone cache key of the "corpus:" spec.
 */
double
measureAloneIpc(const CorpusEntry &entry, const Options &opt)
{
    GeomSpec geom;
    SchemeSpec none;
    none.kind = SchemeKind::NoRefresh;
    std::string spec = entry.spec();
    WorkloadMix solo = {spec};
    SystemConfig cfg = makeSystemConfig(
        geom, none, solo, hashString(aloneIpcCacheKey(spec, geom)));
    RunResult r = runOne(cfg, static_cast<Cycle>(opt.aloneWarmup),
                         static_cast<Cycle>(opt.aloneCycles));
    double ipc = r.ipc.at(0);
    if (!(ipc > 0.0) || !std::isfinite(ipc)) {
        fatal("alone-IPC reference run of '%s' yielded IPC = %g; the "
              "trace made no progress",
              entry.name.c_str(), ipc);
    }
    return ipc;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);
    if (::mkdir(opt.out.c_str(), 0777) != 0 && errno != EEXIST) {
        fatal("cannot create output directory '%s': %s (mkdir is one "
              "level deep; create missing parents first)",
              opt.out.c_str(), std::strerror(errno));
    }

    // Record every trace and bin it by intensity.
    std::vector<CorpusEntry> entries;
    for (const std::string &name : opt.benchmarks) {
        CorpusEntry e;
        e.name = name;
        e.format = formatFor(opt, entries.size());
        e.file = name + (e.format == TraceFormat::Binary ? ".bin"
                                                         : ".trace");
        e.instructions = opt.instructions;
        TraceGen gen(benchmarkByName(name),
                     hashCombine(opt.seed, hashString(name)), 0,
                     kRecordSlice);
        std::uint64_t mem = recordTrace(gen, opt.out + "/" + e.file,
                                        e.format, opt.instructions);
        e.mpki = classifyApki(1000.0 * static_cast<double>(mem) /
                              static_cast<double>(opt.instructions));
        entries.push_back(std::move(e));
    }
    for (const auto &imp : opt.imports) {
        CorpusEntry e;
        e.name = imp.first;
        e.format = formatFor(opt, entries.size());
        e.file = e.name + (e.format == TraceFormat::Binary ? ".bin"
                                                           : ".trace");
        e.instructions = opt.instructions;
        // Loop the input so short traces still fill the requested
        // instruction count (degenerate inputs die with a diagnostic).
        FileTraceSource src(imp.second, 0, kRecordSlice);
        std::uint64_t mem = recordTrace(src, opt.out + "/" + e.file,
                                        e.format, opt.instructions);
        e.mpki = classifyApki(1000.0 * static_cast<double>(mem) /
                              static_cast<double>(opt.instructions));
        entries.push_back(std::move(e));
    }

    // Validate the set (duplicate names, resolvable files) and make it
    // the active corpus, so the alone-IPC reference runs resolve
    // "corpus:<name>" specs exactly like a later sweep will.
    Corpus::setActive(
        std::make_shared<const Corpus>(Corpus(opt.out, entries)));

    if (opt.aloneIpc) {
        for (CorpusEntry &e : entries)
            e.aloneIpc = measureAloneIpc(e, opt);
    }

    std::string comment;
    if (opt.aloneIpc) {
        comment = strprintf(
            "alone-ipc measured at --alone-cycles=%lld "
            "--alone-warmup=%lld on the reference geometry; run sweeps "
            "with matching HIRA_CYCLES/HIRA_WARMUP for bitwise "
            "prior-vs-measured equivalence",
            static_cast<long long>(opt.aloneCycles),
            static_cast<long long>(opt.aloneWarmup));
    }
    writeManifest(opt.out, entries, opt.json, comment);

    std::printf("wrote %zu traces + manifest.tsv%s to %s\n",
                entries.size(), opt.json ? " + manifest.json" : "",
                opt.out.c_str());
    for (const CorpusEntry &e : entries) {
        std::printf("  %-20s %-6s %8llu instrs  class %c  alone-IPC %s\n",
                    e.name.c_str(),
                    e.format == TraceFormat::Binary ? "binary" : "text",
                    static_cast<unsigned long long>(e.instructions),
                    mpkiClassLetter(e.mpki),
                    e.hasAloneIpc()
                        ? strprintf("%.4f", e.aloneIpc).c_str()
                        : "-");
    }
    std::printf("use it with: HIRA_CORPUS=%s ./bench/<driver>\n",
                opt.out.c_str());
    return 0;
}
