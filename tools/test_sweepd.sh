#!/usr/bin/env bash
# Integration test for the hira_sweepd sweep service.
#
#   test_sweepd.sh <hira_sweepd> <hira_sweepc> <workdir> [quick|full]
#
# quick (the smoke tier): checkpoint priming through a direct --worker
# run, daemon serving a plan that is half cached, and a warm resubmit
# that simulates nothing.
# full (the integration tier): quick, plus kill -9 of the daemon and
# its workers mid-plan followed by a resume — the resubmitted plan must
# complete, serving every point that finished before the kill from the
# cache checkpoint.
set -eu

SWEEPD=$1
SWEEPC=$2
WORKDIR=$3
MODE=${4:-full}

mkdir -p "$WORKDIR"
cd "$WORKDIR"
rm -rf cache cache2 d.sock plan.json plan2.json slice.json out*.json \
    daemon*.log
mkdir -p cache

# Pin the simulation environment: the daemon's env feeds the cache keys
# and the workers inherit it, so ambient knobs must not leak in.
export HIRA_THREADS=2
export HIRA_METRICS=
export HIRA_TRACE_EVENTS=
export HIRA_CORPUS=
export HIRA_CORPUS_ONCE=
export HIRA_RESULT_CACHE=
export HIRA_RESULT_CACHE_MODE=
export HIRA_CACHE_REV=
export HIRA_STANDARD=
export HIRA_JSON=

DPID=""
cleanup() {
    if [ -n "$DPID" ]; then
        pkill -9 -P "$DPID" 2> /dev/null || true
        kill -9 "$DPID" 2> /dev/null || true
    fi
}
trap cleanup EXIT

fail() {
    echo "FAIL: $*" >&2
    exit 1
}

# Integer field of a one-key-per-line JSON reply.
field() {
    sed -n "s/.*\"$2\": \([0-9][0-9]*\).*/\1/p" "$1" | head -n 1
}

points() {
    ls "$1"/*.point 2> /dev/null | wc -l
}

wait_for_socket() {
    for _ in $(seq 1 100); do
        [ -S d.sock ] && return 0
        sleep 0.1
    done
    fail "daemon socket never appeared"
}

cat > plan.json << 'EOF'
{
  "mixes": [["mcf-like", "gcc-like"], ["libquantum-like", "h264-like"]],
  "warmup": 1000,
  "cycles": 8000,
  "points": [
    {"geom": {"capacity_gb": 8.0}, "scheme": {"name": "baseline"}},
    {"geom": {"capacity_gb": 8.0}, "scheme": {"name": "hira", "slack_n": 4}},
    {"geom": {"capacity_gb": 8.0}, "scheme": {"name": "rfm"}},
    {"geom": {"capacity_gb": 8.0}, "scheme": {"name": "prac"}}
  ]
}
EOF

# Phase A: prime the checkpoint with a direct --worker run of the first
# two points. This is exactly what a daemon worker executes, so the
# entries it commits must satisfy the daemon's later lookups.
cat > slice.json << 'EOF'
{
  "mixes": [["mcf-like", "gcc-like"], ["libquantum-like", "h264-like"]],
  "warmup": 1000,
  "cycles": 8000,
  "points": [
    {"geom": {"capacity_gb": 8.0}, "scheme": {"name": "baseline"}},
    {"geom": {"capacity_gb": 8.0}, "scheme": {"name": "hira", "slack_n": 4}}
  ]
}
EOF
"$SWEEPD" --worker --plan slice.json --cache cache
[ "$(points cache)" -eq 2 ] || \
    fail "worker run committed $(points cache) points, expected 2"

# Phase B: daemon serves the full plan — two points from the primed
# cache, two simulated by worker processes.
"$SWEEPD" --socket d.sock --cache cache --workers 2 \
    > daemon1.log 2>&1 &
DPID=$!
wait_for_socket
"$SWEEPC" --socket d.sock --plan plan.json > out1.json
[ "$(field out1.json points_total)" -eq 4 ] || fail "B: total != 4"
[ "$(field out1.json points_cached)" -eq 2 ] || \
    fail "B: expected 2 cached points, got $(field out1.json points_cached)"
[ "$(field out1.json points_simulated)" -eq 2 ] || \
    fail "B: expected 2 simulated points"
[ "$(points cache)" -eq 4 ] || fail "B: cache should now hold 4 points"

# Phase C: warm resubmit — nothing simulates.
"$SWEEPC" --socket d.sock --plan plan.json > out2.json
[ "$(field out2.json points_cached)" -eq 4 ] || fail "C: not all cached"
[ "$(field out2.json points_simulated)" -eq 0 ] || \
    fail "C: warm plan re-simulated points"

kill "$DPID" 2> /dev/null || true
wait "$DPID" 2> /dev/null || true
DPID=""

if [ "$MODE" = "quick" ]; then
    echo "PASS (quick)"
    exit 0
fi

# Phase D: kill mid-run, then resume. A longer 6-point plan against a
# fresh cache; as soon as the first point commits, the daemon and its
# workers are killed -9. The resubmitted plan must complete, serving
# at least the already-committed points from the checkpoint.
mkdir -p cache2
cat > plan2.json << 'EOF'
{
  "mixes": [["mcf-like", "gcc-like"], ["libquantum-like", "h264-like"]],
  "warmup": 2000,
  "cycles": 60000,
  "points": [
    {"geom": {"capacity_gb": 8.0}, "scheme": {"name": "baseline"}},
    {"geom": {"capacity_gb": 8.0}, "scheme": {"name": "hira", "slack_n": 2}},
    {"geom": {"capacity_gb": 8.0}, "scheme": {"name": "hira", "slack_n": 4}},
    {"geom": {"capacity_gb": 8.0}, "scheme": {"name": "hira", "slack_n": 8}},
    {"geom": {"capacity_gb": 8.0}, "scheme": {"name": "rfm"}},
    {"geom": {"capacity_gb": 8.0}, "scheme": {"name": "prac"}}
  ]
}
EOF
rm -f d.sock
"$SWEEPD" --socket d.sock --cache cache2 --workers 2 \
    > daemon2.log 2>&1 &
DPID=$!
wait_for_socket
"$SWEEPC" --socket d.sock --plan plan2.json > out3.json 2> /dev/null &
CPID=$!
for _ in $(seq 1 600); do
    [ "$(points cache2)" -ge 1 ] && break
    sleep 0.1
done
[ "$(points cache2)" -ge 1 ] || fail "D: no point ever committed"
pkill -9 -P "$DPID" 2> /dev/null || true
kill -9 "$DPID" 2> /dev/null || true
wait "$CPID" 2> /dev/null && fail "D: client should fail after the kill"
DPID=""
PRE=$(points cache2)
[ "$PRE" -lt 6 ] || echo "note: all 6 points finished before the kill"

# Resume: a fresh daemon, same plan, same cache. Completed points come
# from the checkpoint; only the remainder simulates.
rm -f d.sock
"$SWEEPD" --socket d.sock --cache cache2 --workers 2 \
    > daemon3.log 2>&1 &
DPID=$!
wait_for_socket
"$SWEEPC" --socket d.sock --plan plan2.json > out4.json
[ "$(field out4.json points_total)" -eq 6 ] || fail "D: total != 6"
[ "$(field out4.json points_cached)" -eq "$PRE" ] || \
    fail "D: resume served $(field out4.json points_cached) cached, expected $PRE"
[ "$(field out4.json points_simulated)" -eq $((6 - PRE)) ] || \
    fail "D: resume simulated $(field out4.json points_simulated), expected $((6 - PRE))"

# And a final warm pass: the resumed plan is now fully cached.
"$SWEEPC" --socket d.sock --plan plan2.json > out5.json
[ "$(field out5.json points_simulated)" -eq 0 ] || \
    fail "D: post-resume warm plan re-simulated points"

kill "$DPID" 2> /dev/null || true
wait "$DPID" 2> /dev/null || true
DPID=""
echo "PASS (full)"
