/**
 * @file
 * hira_sweepd: the sweep service — a long-running daemon that accepts
 * serialized sweep plans (src/sim/sweep_plan.hh JSON) over a
 * unix-domain socket, serves every point it can from the shared result
 * cache, and shards the cache misses across a pool of worker
 * *processes* (fork/exec of this same binary in --worker mode, one
 * plan slice each). Workers commit each completed point to the cache
 * directory before starting the next, so the cache doubles as the
 * checkpoint: a plan killed mid-run and resubmitted resumes from the
 * completed points only — nothing is re-simulated.
 *
 * Daemon:   hira_sweepd --socket <path> --cache <dir> [--workers N]
 * Worker:   hira_sweepd --worker --plan <file> --cache <dir>
 * Client:   hira_sweepc --socket <path> [--plan <file>]   (or stdin)
 *
 * Protocol: the client writes one JSON sweep plan and half-closes; the
 * daemon replies with one JSON object {"status", "points_total",
 * "points_cached", "points_simulated", "results": [...]} and closes.
 * Simulation behavior (engine, kernel, metrics, corpus, threads per
 * worker) comes from the daemon's environment, which workers inherit —
 * the same knobs that feed the cache keys, so daemon and workers can
 * never disagree on what a point means.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/json.hh"
#include "common/knobs.hh"
#include "common/logging.hh"
#include "sim/experiment.hh"
#include "sim/result_cache.hh"
#include "sim/sweep_plan.hh"

using namespace hira;

namespace {

struct Options
{
    std::string socketPath;
    std::string cacheDir;
    std::string planPath;
    int workers = 2;
    bool workerMode = false;
};

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s --socket <path> --cache <dir> [--workers N]\n"
        "       %s --worker --plan <file> --cache <dir>\n"
        "\n"
        "Sweep service: accepts JSON sweep plans (see "
        "src/sim/sweep_plan.hh)\n"
        "over a unix-domain socket, serves cached points from <dir>, "
        "and\n"
        "shards the misses across N worker processes. Submit plans "
        "with\n"
        "hira_sweepc.\n",
        argv0, argv0);
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](const char *name) -> std::string {
            if (i + 1 >= argc)
                fatal("%s needs a value", name);
            return argv[++i];
        };
        if (arg == "--socket") {
            opt.socketPath = value("--socket");
        } else if (arg == "--cache") {
            opt.cacheDir = value("--cache");
        } else if (arg == "--plan") {
            opt.planPath = value("--plan");
        } else if (arg == "--workers") {
            opt.workers = std::atoi(value("--workers").c_str());
            if (opt.workers < 1)
                fatal("--workers must be >= 1");
        } else if (arg == "--worker") {
            opt.workerMode = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            std::exit(0);
        } else {
            usage(argv[0]);
            fatal("unknown argument '%s'", arg.c_str());
        }
    }
    if (opt.cacheDir.empty())
        fatal("--cache <dir> is required (the shared result cache)");
    if (opt.workerMode && opt.planPath.empty())
        fatal("--worker needs --plan <file>");
    if (!opt.workerMode && opt.socketPath.empty())
        fatal("--socket <path> is required in daemon mode");
    return opt;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot read '%s'", path.c_str());
    std::stringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** Knobs a plan runs under: the environment, plus plan overrides. */
BenchKnobs
planKnobs(const SweepPlan &plan)
{
    BenchKnobs knobs = BenchKnobs::fromEnv();
    if (plan.warmup >= 0)
        knobs.warmup = plan.warmup;
    if (plan.cycles >= 0)
        knobs.cycles = plan.cycles;
    return knobs;
}

/**
 * Worker mode: evaluate the plan slice ONE POINT PER runPoints() CALL,
 * so every completed point is committed to the cache before the next
 * starts — this per-point granularity is the daemon's checkpoint.
 * Alone-IPC runs are shared across the calls through the runner's
 * in-memory cache and persisted through the disk cache.
 */
int
runWorker(const Options &opt)
{
    SweepPlan plan =
        sweepPlanFromJson(readFile(opt.planPath), opt.planPath);
    BenchKnobs knobs = planKnobs(plan);
    SweepRunner runner(knobs, plan.mixes);
    runner.setResultCache(std::make_unique<ResultCache>(
        opt.cacheDir, ResultCacheMode::ReadWrite));
    for (const SweepPoint &p : plan.points)
        runner.runPoints({p});
    return 0;
}

// ---------------------------------------------------------------------
// Daemon mode
// ---------------------------------------------------------------------

/**
 * Shard @p missPoints round-robin across worker processes and wait for
 * all of them. Slice plans land next to the cache entries (the daemon
 * may not have write access anywhere else). Returns the number of
 * workers that exited cleanly.
 */
int
runWorkers(const char *argv0, const Options &opt, const SweepPlan &plan,
           const BenchKnobs &knobs,
           const std::vector<SweepPoint> &missPoints)
{
    int nWorkers = static_cast<int>(
        std::min<std::size_t>(opt.workers, missPoints.size()));
    std::vector<SweepPlan> slices(nWorkers);
    for (int w = 0; w < nWorkers; ++w) {
        slices[w].mixes = plan.mixes;
        slices[w].warmup = knobs.warmup;
        slices[w].cycles = knobs.cycles;
    }
    for (std::size_t i = 0; i < missPoints.size(); ++i)
        slices[i % nWorkers].points.push_back(missPoints[i]);

    std::vector<pid_t> pids;
    std::vector<std::string> sliceFiles;
    for (int w = 0; w < nWorkers; ++w) {
        std::string path = strprintf("%s/plan-slice.%ld.%d.json",
                                     opt.cacheDir.c_str(),
                                     static_cast<long>(::getpid()), w);
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << sweepPlanToJson(slices[w]);
        out.close();
        if (!out)
            fatal("cannot write plan slice '%s'", path.c_str());
        sliceFiles.push_back(path);

        pid_t pid = ::fork();
        if (pid < 0)
            fatal("fork: %s", std::strerror(errno));
        if (pid == 0) {
            ::execlp(argv0, argv0, "--worker", "--plan", path.c_str(),
                     "--cache", opt.cacheDir.c_str(),
                     static_cast<char *>(nullptr));
            std::fprintf(stderr, "execlp %s: %s\n", argv0,
                         std::strerror(errno));
            ::_exit(127);
        }
        pids.push_back(pid);
    }

    int clean = 0;
    for (pid_t pid : pids) {
        int status = 0;
        if (::waitpid(pid, &status, 0) == pid &&
            WIFEXITED(status) && WEXITSTATUS(status) == 0) {
            ++clean;
        } else {
            warn("sweep worker %ld failed (status 0x%x); its remaining "
                 "points stay uncached",
                 static_cast<long>(pid), status);
        }
    }
    for (const std::string &path : sliceFiles)
        std::remove(path.c_str());
    return clean;
}

/** Handle one request: plan in, results (or error) out. */
std::string
handleRequest(const char *argv0, const Options &opt,
              const std::string &request)
{
    SweepPlan plan = sweepPlanFromJson(request, "sweepd request");
    BenchKnobs knobs = planKnobs(plan);

    // The daemon only ever READS the cache; workers do the writing.
    ResultCache cache(opt.cacheDir, ResultCacheMode::Read);

    std::vector<std::string> keys;
    for (const SweepPoint &p : plan.points)
        keys.push_back(p.cacheKey(knobs, plan.mixes));

    std::vector<PointResult> results(plan.points.size());
    std::vector<bool> cached(plan.points.size(), false);
    std::vector<SweepPoint> missPoints;
    for (std::size_t i = 0; i < plan.points.size(); ++i) {
        if (cache.lookupPoint(keys[i], results[i]))
            cached[i] = true;
        else
            missPoints.push_back(plan.points[i]);
    }
    std::size_t nCached = plan.points.size() - missPoints.size();

    if (!missPoints.empty()) {
        inform("sweepd: plan of %zu points: %zu cached, %zu to "
                 "simulate across %d workers",
                 plan.points.size(), nCached, missPoints.size(),
                 opt.workers);
        runWorkers(argv0, opt, plan, knobs, missPoints);
        // Re-read every miss from the (now worker-populated) cache. A
        // failed/killed worker leaves holes; those points are reported
        // as errors so a resubmit can finish them.
        for (std::size_t i = 0; i < plan.points.size(); ++i) {
            if (!cached[i] && !cache.lookupPoint(keys[i], results[i])) {
                return strprintf(
                    "{\"status\": \"error\", \"error\": \"point %zu "
                    "(%s on %s) did not complete; resubmit the plan to "
                    "resume\"}\n",
                    i, jsonEscape(plan.points[i].scheme.label()).c_str(),
                    jsonEscape(plan.points[i].geom.key()).c_str());
            }
        }
    }

    std::string out = strprintf(
        "{\n  \"status\": \"ok\",\n  \"points_total\": %zu,\n"
        "  \"points_cached\": %zu,\n  \"points_simulated\": %zu,\n"
        "  \"results\": [",
        plan.points.size(), nCached, missPoints.size());
    for (std::size_t i = 0; i < plan.points.size(); ++i) {
        const SweepPoint &p = plan.points[i];
        const PointResult &r = results[i];
        const RefreshStats &rs = r.refresh;
        out += i == 0 ? "\n" : ",\n";
        out += strprintf(
            "    {\"label\": \"%s\", \"geom\": \"%s\", "
            "\"mean_ws\": %s, \"wall_seconds\": %s, "
            "\"sim_cycles\": %llu, \"cache_hit\": %s, "
            "\"refresh\": {\"ref_commands\": %llu, "
            "\"row_refreshes\": %llu, \"deadline_misses\": %llu, "
            "\"preventive_generated\": %llu}}",
            jsonEscape(p.scheme.label()).c_str(),
            jsonEscape(p.geom.key()).c_str(),
            jsonDouble(r.meanWs).c_str(),
            jsonDouble(r.wallSeconds).c_str(),
            static_cast<unsigned long long>(r.simCycles),
            cached[i] ? "true" : "false",
            static_cast<unsigned long long>(rs.refCommands),
            static_cast<unsigned long long>(rs.rowRefreshes),
            static_cast<unsigned long long>(rs.deadlineMisses),
            static_cast<unsigned long long>(rs.preventiveGenerated));
    }
    out += "\n  ]\n}\n";
    return out;
}

int
runDaemon(const char *argv0, const Options &opt)
{
    // A dying client mid-reply must not kill the daemon.
    std::signal(SIGPIPE, SIG_IGN);

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (opt.socketPath.size() >= sizeof(addr.sun_path)) {
        fatal("socket path '%s' exceeds the AF_UNIX limit (%zu bytes); "
              "use a shorter path",
              opt.socketPath.c_str(), sizeof(addr.sun_path) - 1);
    }
    std::strncpy(addr.sun_path, opt.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);

    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        fatal("socket: %s", std::strerror(errno));
    ::unlink(opt.socketPath.c_str()); // stale socket from a kill
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        fatal("bind %s: %s", opt.socketPath.c_str(),
              std::strerror(errno));
    }
    if (::listen(fd, 8) != 0)
        fatal("listen: %s", std::strerror(errno));
    inform("sweepd: listening on %s (cache %s, %d workers)",
             opt.socketPath.c_str(), opt.cacheDir.c_str(), opt.workers);

    for (;;) {
        int conn = ::accept(fd, nullptr, nullptr);
        if (conn < 0) {
            if (errno == EINTR)
                continue;
            fatal("accept: %s", std::strerror(errno));
        }
        // Request framing: read to EOF (the client half-closes).
        std::string request;
        char buf[4096];
        ssize_t n;
        while ((n = ::read(conn, buf, sizeof(buf))) > 0)
            request.append(buf, static_cast<std::size_t>(n));
        std::string reply = handleRequest(argv0, opt, request);
        std::size_t off = 0;
        while (off < reply.size()) {
            ssize_t w =
                ::write(conn, reply.data() + off, reply.size() - off);
            if (w <= 0)
                break; // client went away; nothing to salvage
            off += static_cast<std::size_t>(w);
        }
        ::close(conn);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);
    if (opt.workerMode)
        return runWorker(opt);
    return runDaemon(argv[0], opt);
}
