#!/usr/bin/env python3
"""Compare the "sections" blocks of two HIRA_JSON bench artifacts.

The observability contract (BUILDING.md "Metrics and event tracing")
says HIRA_METRICS / HIRA_TRACE_EVENTS may add information to a bench
artifact ("metrics_level", per-point "metrics" objects) but must never
change a result the driver reports: the "sections" arrays — every
figure/table series, every row label, every value — must be bitwise
identical between a metrics-on and a metrics-off run. CI enforces that
with this script; any drift is an instrumentation perturbation bug.

Usage: compare_bench_sections.py A.json B.json
Exits 0 when the sections match, 1 with a diff summary otherwise.
"""

import json
import sys


def load_sections(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if "sections" not in doc:
        sys.exit(f"error: {path}: no \"sections\" block")
    return doc["sections"]


def describe(sec, idx):
    label = sec.get("label", "") if isinstance(sec, dict) else ""
    return f"section #{idx} ({label!r})"


def main(argv):
    if len(argv) != 3:
        sys.exit(f"usage: {argv[0]} A.json B.json")
    a_path, b_path = argv[1], argv[2]
    a, b = load_sections(a_path), load_sections(b_path)

    errors = []
    if len(a) != len(b):
        errors.append(f"section count differs: {len(a)} vs {len(b)}")
    for i, (sa, sb) in enumerate(zip(a, b)):
        where = describe(sa, i)
        if sa.get("label") != sb.get("label"):
            errors.append(f"{where}: label differs: "
                          f"{sa.get('label')!r} vs {sb.get('label')!r}")
        if sa.get("columns") != sb.get("columns"):
            errors.append(f"{where}: columns differ")
        ra, rb = sa.get("rows", []), sb.get("rows", [])
        if len(ra) != len(rb):
            errors.append(f"{where}: row count differs: "
                          f"{len(ra)} vs {len(rb)}")
        for j, (rowa, rowb) in enumerate(zip(ra, rb)):
            if rowa.get("label") != rowb.get("label"):
                errors.append(f"{where} row #{j}: label differs: "
                              f"{rowa.get('label')!r} vs "
                              f"{rowb.get('label')!r}")
            # Values must match exactly (the emitter prints doubles with
            # a fixed format, so bitwise-identical results serialize to
            # identical strings and parse to identical floats).
            if rowa.get("values") != rowb.get("values"):
                errors.append(f"{where} row #{j} "
                              f"({rowa.get('label')!r}): values differ:\n"
                              f"    {a_path}: {rowa.get('values')}\n"
                              f"    {b_path}: {rowb.get('values')}")

    if errors:
        print(f"sections of {a_path} and {b_path} DIFFER:",
              file=sys.stderr)
        for e in errors:
            print(f"  {e}", file=sys.stderr)
        return 1
    n_rows = sum(len(s.get("rows", [])) for s in a)
    print(f"sections match: {len(a)} sections, {n_rows} rows identical")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
