#!/usr/bin/env python3
"""Compare the "sections" blocks of two HIRA_JSON bench artifacts.

The observability contract (BUILDING.md "Metrics and event tracing")
says HIRA_METRICS / HIRA_TRACE_EVENTS may add information to a bench
artifact ("metrics_level", per-point "metrics" objects) but must never
change a result the driver reports: the "sections" arrays — every
figure/table series, every row label, every value — must be bitwise
identical between a metrics-on and a metrics-off run. The result-cache
contract (BUILDING.md "Result cache and sweep service") extends the
same bar to cold-vs-warm reruns. CI enforces both with this script;
any drift is an instrumentation or cache-fidelity bug.

Usage: compare_bench_sections.py [--tolerance REL] A.json B.json

The default is exact (bitwise) comparison. --tolerance REL accepts a
relative deviation per value (|a-b| <= REL * max(|a|, |b|)) for
workflows that compare across legitimately-perturbed runs, e.g.
different machines with timing-derived values; the structural checks
(section/row/column labels and counts) always stay exact.

Exits 0 when the sections match. Exits 1 otherwise, with a full diff
listing on stderr and a final "first divergence:" line naming the
first differing section, row, and column — the thing to paste into a
bug report.
"""

import argparse
import json
import sys


def load_sections(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if "sections" not in doc:
        sys.exit(f"error: {path}: no \"sections\" block")
    return doc["sections"]


def describe(sec, idx):
    label = sec.get("label", "") if isinstance(sec, dict) else ""
    return f"section #{idx} ({label!r})"


def values_equal(va, vb, tolerance):
    if va == vb:
        return True
    if tolerance <= 0.0:
        return False
    if not (isinstance(va, (int, float)) and isinstance(vb, (int, float))):
        return False
    if va is None or vb is None:
        return False
    return abs(va - vb) <= tolerance * max(abs(va), abs(vb))


def main(argv):
    parser = argparse.ArgumentParser(
        description="Compare the sections blocks of two bench artifacts")
    parser.add_argument("a", metavar="A.json")
    parser.add_argument("b", metavar="B.json")
    parser.add_argument(
        "--tolerance", type=float, default=0.0, metavar="REL",
        help="allowed relative deviation per value "
             "(default 0: exact match)")
    opts = parser.parse_args(argv[1:])
    a_path, b_path = opts.a, opts.b
    a, b = load_sections(a_path), load_sections(b_path)

    errors = []
    # (section label, row label, column label) of the first differing
    # value — the one-line answer to "where did it go wrong first?".
    first_divergence = None

    def diverge(sec, row_label, col):
        nonlocal first_divergence
        if first_divergence is None:
            first_divergence = (sec.get("label"), row_label, col)

    if len(a) != len(b):
        errors.append(f"section count differs: {len(a)} vs {len(b)}")
    for i, (sa, sb) in enumerate(zip(a, b)):
        where = describe(sa, i)
        if sa.get("label") != sb.get("label"):
            errors.append(f"{where}: label differs: "
                          f"{sa.get('label')!r} vs {sb.get('label')!r}")
        if sa.get("columns") != sb.get("columns"):
            errors.append(f"{where}: columns differ")
        ra, rb = sa.get("rows", []), sb.get("rows", [])
        if len(ra) != len(rb):
            errors.append(f"{where}: row count differs: "
                          f"{len(ra)} vs {len(rb)}")
        columns = sa.get("columns", [])
        for j, (rowa, rowb) in enumerate(zip(ra, rb)):
            if rowa.get("label") != rowb.get("label"):
                errors.append(f"{where} row #{j}: label differs: "
                              f"{rowa.get('label')!r} vs "
                              f"{rowb.get('label')!r}")
            # Values must match exactly by default (the emitter prints
            # doubles with a fixed format, so bitwise-identical results
            # serialize to identical strings and parse to identical
            # floats); --tolerance relaxes values only.
            va, vb = rowa.get("values", []), rowb.get("values", [])
            if len(va) != len(vb):
                errors.append(f"{where} row #{j} "
                              f"({rowa.get('label')!r}): value count "
                              f"differs: {len(va)} vs {len(vb)}")
                diverge(sa, rowa.get("label"), None)
                continue
            bad = [k for k in range(len(va))
                   if not values_equal(va[k], vb[k], opts.tolerance)]
            if bad:
                col = (columns[bad[0]]
                       if bad[0] < len(columns) else f"#{bad[0]}")
                diverge(sa, rowa.get("label"), col)
                errors.append(f"{where} row #{j} "
                              f"({rowa.get('label')!r}): values differ "
                              f"at column(s) "
                              f"{[columns[k] if k < len(columns) else k for k in bad]}:\n"
                              f"    {a_path}: {va}\n"
                              f"    {b_path}: {vb}")

    if errors:
        print(f"sections of {a_path} and {b_path} DIFFER:",
              file=sys.stderr)
        for e in errors:
            print(f"  {e}", file=sys.stderr)
        if first_divergence is not None:
            sec, row, col = first_divergence
            print(f"first divergence: section {sec!r}, row {row!r}, "
                  f"column {col!r}", file=sys.stderr)
        return 1
    n_rows = sum(len(s.get("rows", [])) for s in a)
    how = (f"within relative tolerance {opts.tolerance:g}"
           if opts.tolerance > 0.0 else "identical")
    print(f"sections match: {len(a)} sections, {n_rows} rows {how}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
