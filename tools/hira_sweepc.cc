/**
 * @file
 * hira_sweepc: submit one sweep plan to a running hira_sweepd and
 * print the reply. The plan comes from --plan <file> or stdin; the
 * reply (the daemon's JSON response) goes to stdout verbatim. Exits
 * nonzero unless the daemon reports {"status": "ok"} — so shell
 * pipelines and CI steps can gate on completion directly.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/json.hh"
#include "common/logging.hh"

using namespace hira;

namespace {

void
usage(const char *argv0)
{
    std::printf("usage: %s --socket <path> [--plan <file>]\n"
                "\n"
                "Submit a JSON sweep plan (src/sim/sweep_plan.hh; from "
                "--plan or stdin)\nto a running hira_sweepd and print "
                "its reply. Exit status 0 iff the\ndaemon answered "
                "\"status\": \"ok\".\n",
                argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socketPath;
    std::string planPath;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](const char *name) -> std::string {
            if (i + 1 >= argc)
                fatal("%s needs a value", name);
            return argv[++i];
        };
        if (arg == "--socket") {
            socketPath = value("--socket");
        } else if (arg == "--plan") {
            planPath = value("--plan");
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            usage(argv[0]);
            fatal("unknown argument '%s'", arg.c_str());
        }
    }
    if (socketPath.empty())
        fatal("--socket <path> is required");

    std::string plan;
    if (!planPath.empty()) {
        std::ifstream in(planPath, std::ios::binary);
        if (!in)
            fatal("cannot read '%s'", planPath.c_str());
        std::stringstream buf;
        buf << in.rdbuf();
        plan = buf.str();
    } else {
        std::stringstream buf;
        buf << std::cin.rdbuf();
        plan = buf.str();
    }
    if (plan.empty())
        fatal("empty plan (give --plan <file> or pipe JSON to stdin)");

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socketPath.size() >= sizeof(addr.sun_path)) {
        fatal("socket path '%s' exceeds the AF_UNIX limit (%zu bytes)",
              socketPath.c_str(), sizeof(addr.sun_path) - 1);
    }
    std::strncpy(addr.sun_path, socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        fatal("socket: %s", std::strerror(errno));
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        fatal("connect %s: %s (is hira_sweepd running?)",
              socketPath.c_str(), std::strerror(errno));
    }

    std::size_t off = 0;
    while (off < plan.size()) {
        ssize_t w = ::write(fd, plan.data() + off, plan.size() - off);
        if (w <= 0)
            fatal("write: %s", std::strerror(errno));
        off += static_cast<std::size_t>(w);
    }
    ::shutdown(fd, SHUT_WR); // EOF frames the request

    std::string reply;
    char buf[4096];
    ssize_t n;
    while ((n = ::read(fd, buf, sizeof(buf))) > 0)
        reply.append(buf, static_cast<std::size_t>(n));
    ::close(fd);
    if (reply.empty())
        fatal("daemon closed the connection without a reply");
    std::fwrite(reply.data(), 1, reply.size(), stdout);

    JsonValue root = parseJson(reply, "sweepd reply");
    const JsonValue *status = root.get("status");
    if (status == nullptr ||
        status->kind != JsonValue::Kind::String ||
        status->string != "ok") {
        return 1;
    }
    return 0;
}
